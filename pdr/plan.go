package pdr

import (
	"context"

	"repro/internal/plan"
)

// Re-exported planner types. The planner answers the capacity question the
// paper's frequency knob opens up: to meet a latency/shed SLO at a given
// offered load, is it cheaper to run more boards at stock clocks or fewer
// boards over-clocked? Plan searches that space with a two-tier engine — a
// closed-form queueing surrogate scores every candidate in microseconds,
// and only the Pareto-optimal survivors are re-evaluated with full fleet
// simulations (memoized, fanned out over a worker pool, merged in fixed
// order so the answer is byte-identical at every worker count).
type (
	// PlanWorkload is the request stream to plan for.
	PlanWorkload = plan.Workload
	// PlanSLO is the planning objective: a p99 sojourn bound and a maximum
	// tolerable shed fraction.
	PlanSLO = plan.SLO
	// PlanSpace parameterises candidate enumeration (compositions, fleet
	// sizes, frequencies, routers, cache budgets).
	PlanSpace = plan.Space
	// PlanCandidate is one fleet configuration under consideration.
	PlanCandidate = plan.Candidate
	// PlanPrediction is the surrogate's closed-form estimate for one
	// candidate: watts, p99, shed, utilisation, configuration energy.
	PlanPrediction = plan.Prediction
	// PlanScored pairs a candidate with its surrogate prediction.
	PlanScored = plan.Scored
	// PlanVerified is one tier-B evaluation: the prediction plus the full
	// fleet simulation it was checked against.
	PlanVerified = plan.Verified
	// PlanResult is the deterministic outcome of one search: the frontier,
	// the verification log, the chosen plan and the single-knob baselines.
	PlanResult = plan.Result
	// PlanMemo caches verifying simulations across Plan calls (re-planning
	// the same space under a different SLO reuses every simulation).
	PlanMemo = plan.Memo
	// PlanWhatIf overrides the surrogate's transfer model for hypothetical
	// hardware (e.g. the Sec.-VI SRAM-PDR estimate).
	PlanWhatIf = plan.WhatIf
)

// NewPlanMemo builds an empty simulation cache to share between Plan calls.
func NewPlanMemo() *PlanMemo { return plan.NewMemo() }

// PlanOptions configures Plan. The zero value plans the standard question:
// the E9/E11 accelerator mix at 2200 req/s against a 12 ms p99 / 1% shed
// SLO, over the default candidate space, with at most 25 verifying
// simulations.
type PlanOptions struct {
	// Workload is the stream to plan for (zero fields take the documented
	// defaults).
	Workload PlanWorkload
	// SLO is the objective (zero = p99 ≤ 12 ms, shed ≤ 1%).
	SLO PlanSLO
	// Space overrides the candidate axes (zero = the default space).
	Space PlanSpace
	// Candidates short-circuits enumeration with an explicit list.
	Candidates []PlanCandidate
	// MaxSims bounds tier B's full fleet simulations (≤ 0 = 25). Memo
	// hits are free.
	MaxSims int
	// Workers bounds tier B's simulation fan-out (≤ 1 = sequential).
	// Output is byte-identical at every setting.
	Workers int
	// FleetWorkers is each verifying simulation's per-epoch board fan-out
	// (also wall-clock only).
	FleetWorkers int
	// Memo, when non-nil, is a shared simulation cache; nil uses a fresh
	// private one.
	Memo *PlanMemo
}

// Plan runs the two-tier capacity search and returns its deterministic
// result: the same (workload, SLO, space) always yields the same bytes,
// whatever the worker counts or memo warmth.
func Plan(ctx context.Context, opts PlanOptions) (*PlanResult, error) {
	return plan.Search(ctx, plan.Options{
		Workload:     opts.Workload,
		SLO:          opts.SLO,
		Space:        opts.Space,
		Candidates:   opts.Candidates,
		MaxSims:      opts.MaxSims,
		Workers:      opts.Workers,
		FleetWorkers: opts.FleetWorkers,
		Memo:         opts.Memo,
	})
}
