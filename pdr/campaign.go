package pdr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workpool"
)

// Re-exported campaign types.
type (
	// Report is one regenerated paper artefact.
	Report = experiments.Report
	// Scenario is a registered, discoverable experiment.
	Scenario = experiments.Scenario
)

// Scenarios lists every registered scenario in suite order (E1…E9, A1…A5).
func Scenarios() []Scenario { return experiments.All() }

// BoardVariant selects the simulated board build a campaign runs on. Every
// registered platform profile is a valid variant (see Platforms), so the
// value is simply the profile name; these constants name the built-ins.
type BoardVariant string

const (
	// ZedBoard is the calibrated paper setup: 25 °C ambient, fast
	// test-friendly thermal time constant.
	ZedBoard BoardVariant = "zedboard"
	// ZedBoardSlowThermal is the ZedBoard preset with the physical 2 s
	// thermal time constant.
	ZedBoardSlowThermal BoardVariant = "zedboard-slow-thermal"
	// ZedBoardHot is the ZedBoard preset in a 45 °C chamber
	// (harsh-environment deployments).
	ZedBoardHot BoardVariant = "zedboard-hot"
	// ZyboZ710 is the smaller Zybo Z7-10 board (xc7z010 fabric, ≈550 MB/s
	// memory plateau).
	ZyboZ710 BoardVariant = "zybo-z7-10"
	// ZC706 is the larger ZC706 board (xc7z045 fabric, ≈990 MB/s plateau,
	// faster speed grade).
	ZC706 BoardVariant = "zc706"
)

// ApplyBoardVariant resolves a variant into an experiments configuration —
// the same resolution a campaign performs. Exposed for tests and tooling
// that build experiment Envs directly.
func ApplyBoardVariant(v BoardVariant, cfg *experiments.Config) error { return v.apply(cfg) }

// apply resolves the variant against the platform registry, so the list of
// valid names (and the error message) can never drift from the profiles
// actually registered.
func (v BoardVariant) apply(cfg *experiments.Config) error {
	if _, ok := platform.Lookup(string(v)); !ok {
		return fmt.Errorf("pdr: unknown board variant %q (registered platforms: %s)",
			v, strings.Join(platform.Names(), ", "))
	}
	cfg.Platform = string(v)
	return nil
}

// CampaignOption configures NewCampaign.
type CampaignOption func(*campaignConfig)

type campaignConfig struct {
	seed            uint64
	workers         int
	ids             []string
	variant         BoardVariant
	freqs           []float64
	temps           []float64
	rates           []float64
	fleetSizes      []int
	router          string
	chaosCrashes    int
	chaosExcursions int
	chaosGlitches   int
	traceFile       string
	scaler          string
	fleetWorkers    int
	planWorkers     int
	planRate        float64
	planP99MS       float64
	planShed        float64
	tracer          *Tracer
}

// WithCampaignSeed fixes the deterministic seed (default 42, the suite's
// reference seed).
func WithCampaignSeed(seed uint64) CampaignOption {
	return func(c *campaignConfig) { c.seed = seed }
}

// WithWorkers sets the worker-pool size. Each worker owns fully independent
// Systems (their own simulation kernels — the kernel itself stays
// single-threaded by design). n ≤ 0 means one worker per available CPU.
func WithWorkers(n int) CampaignOption {
	return func(c *campaignConfig) { c.workers = n }
}

// WithScenarios restricts the campaign to the given scenario IDs or aliases
// (default: the full registered suite).
func WithScenarios(ids ...string) CampaignOption {
	return func(c *campaignConfig) { c.ids = append([]string(nil), ids...) }
}

// WithBoardVariant selects the simulated board build.
func WithBoardVariant(v BoardVariant) CampaignOption {
	return func(c *campaignConfig) { c.variant = v }
}

// WithFrequencyGrid overrides the frequency axis of the grid scenarios
// (E2, E3, E4).
func WithFrequencyGrid(freqsMHz ...float64) CampaignOption {
	return func(c *campaignConfig) { c.freqs = append([]float64(nil), freqsMHz...) }
}

// WithTemperatureGrid overrides the temperature axis of the stress/power
// scenarios (E3, E4).
func WithTemperatureGrid(tempsC ...float64) CampaignOption {
	return func(c *campaignConfig) { c.temps = append([]float64(nil), tempsC...) }
}

// WithRateGrid overrides the offered-load axis (requests/s) of the
// saturation scenario (E11). The shard plan reshapes with the grid —
// deterministically, independent of worker count.
func WithRateGrid(ratesPerSec ...float64) CampaignOption {
	return func(c *campaignConfig) { c.rates = append([]float64(nil), ratesPerSec...) }
}

// WithFleetGrid overrides the fleet-size axis of the scale-out scenario
// (E13). The shard plan reshapes with the grid — deterministically,
// independent of worker count.
func WithFleetGrid(sizes ...int) CampaignOption {
	return func(c *campaignConfig) { c.fleetSizes = append([]int(nil), sizes...) }
}

// WithFleetRouter selects the routing policy the scale-out scenario (E13)
// serves through (default least-outstanding; see Routers). The routing
// scenario (E14) sweeps every policy regardless.
func WithFleetRouter(name string) CampaignOption {
	return func(c *campaignConfig) { c.router = name }
}

// WithChaosStorm reshapes the fault storm the chaos scenario (E15) replays:
// the number of board outages, thermal excursions and CRC glitch bursts.
// For each count, 0 keeps the standard storm and a negative value removes
// that fault class entirely. The storm stays seeded and deterministic —
// every routing policy still faces the identical event list.
func WithChaosStorm(crashes, excursions, glitches int) CampaignOption {
	return func(c *campaignConfig) {
		c.chaosCrashes = crashes
		c.chaosExcursions = excursions
		c.chaosGlitches = glitches
	}
}

// WithTraceFile replays the diurnal scenario's (E16) arrival stream from a
// versioned trace file (see ExportTrace/ImportTrace) instead of generating
// it from the campaign seed. The file's bytes become part of the campaign
// configuration: identical file, identical run.
func WithTraceFile(path string) CampaignOption {
	return func(c *campaignConfig) { c.traceFile = path }
}

// WithScalerPolicy restricts the diurnal scenario (E16) to a single
// autoscaler policy instead of comparing every policy (see
// ScalerPolicies).
func WithScalerPolicy(policy ScalerPolicy) CampaignOption {
	return func(c *campaignConfig) { c.scaler = string(policy) }
}

// WithFleetWorkers bounds the goroutines each fleet scenario's per-epoch
// board advance fans out over, inside one campaign unit (it composes with
// WithWorkers, which parallelises across units). n ≤ 0 means one per
// available CPU. Purely a wall-clock knob: fleet output is byte-identical
// at every setting.
func WithFleetWorkers(n int) CampaignOption {
	return func(c *campaignConfig) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.fleetWorkers = n
	}
}

// WithPlanWorkers bounds the goroutines the planner scenario's (E17)
// tier-B verifying simulations fan out over. n ≤ 0 means one per available
// CPU. Purely a wall-clock knob: the search result is byte-identical at
// every setting.
func WithPlanWorkers(n int) CampaignOption {
	return func(c *campaignConfig) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.planWorkers = n
	}
}

// WithPlanRate overrides the offered load (requests/s) the planner
// scenario (E17) plans for (default 2200).
func WithPlanRate(ratePerSec float64) CampaignOption {
	return func(c *campaignConfig) { c.planRate = ratePerSec }
}

// WithSLO overrides the planner scenario's (E17) objective: the p99
// sojourn bound and the maximum tolerable shed fraction. A zero (or
// negative) value keeps that component's default (p99 ≤ 12 ms, shed ≤ 1%).
func WithSLO(p99 sim.Duration, maxShed float64) CampaignOption {
	return func(c *campaignConfig) {
		if p99 > 0 {
			c.planP99MS = float64(p99) / float64(sim.Millisecond)
		}
		if maxShed > 0 {
			c.planShed = maxShed
		}
	}
}

// WithTracer attaches a deterministic tracing/metrics collector to the
// campaign's fleet scenarios (E13–E16): each shard's fleet records
// request spans, control-plane events and sim-time gauge series under a
// schedule-independent key. Tracing never perturbs the reports — they
// stay byte-identical with or without it — and the tracer's exports are
// byte-identical at every worker count. See NewTracer.
func WithTracer(t *Tracer) CampaignOption {
	return func(c *campaignConfig) { c.tracer = t }
}

// Campaign runs a set of registered scenarios, sharded across a pool of
// workers. Every shard is a pure function of the campaign configuration
// and runs on its own freshly booted System, and shard reports merge by
// index, so the output is bit-identical whatever the worker count — a
// parallel campaign is just a faster sequential one.
type Campaign struct {
	cfg campaignConfig
}

// NewCampaign builds a campaign; Run executes it.
func NewCampaign(opts ...CampaignOption) *Campaign {
	c := &Campaign{cfg: campaignConfig{seed: 42, workers: 1}}
	for _, fn := range opts {
		fn(&c.cfg)
	}
	return c
}

// CampaignResult is the deterministic outcome of a campaign run.
type CampaignResult struct {
	// Reports holds one merged report per selected scenario, in selection
	// order (suite order when no WithScenarios option was given);
	// duplicate selections are collapsed to the first occurrence.
	Reports []*Report
	// Seed is the campaign seed the reports were generated at.
	Seed uint64
	// Workers and Units record the executed schedule's shape (they do not
	// affect Reports).
	Workers int
	Units   int
	// Pool is the campaign worker pool's wall-clock utilization, one entry
	// per worker (units claimed, busy time); Elapsed is the whole run's
	// wall clock. Schedule facts for profiling — like Workers and Units
	// they never affect Reports or their JSON encoding.
	Pool    []workpool.WorkerCount
	Elapsed time.Duration

	// cfg is the resolved experiments configuration, kept so Markdown's
	// shard column reflects grid/variant overrides.
	cfg experiments.Config
}

// Render formats every report as an aligned text table.
func (r *CampaignResult) Render() string {
	var b strings.Builder
	for _, rep := range r.Reports {
		b.WriteString(rep.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the reports as one stable JSON document.
func (r *CampaignResult) JSON() ([]byte, error) { return experiments.EncodeJSON(r.Reports) }

// Markdown renders the reports as the EXPERIMENTS.md document.
func (r *CampaignResult) Markdown() string {
	return experiments.MarkdownSuite(r.Reports, r.cfg)
}

type campaignUnit struct {
	scen  int
	shard int
}

// Run executes the campaign. It honours ctx: cancellation aborts workers
// between measurement points and Run returns the context's error.
func (c *Campaign) Run(ctx context.Context) (*CampaignResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ecfg := experiments.Config{
		Seed:            c.cfg.seed,
		Freqs:           c.cfg.freqs,
		Temps:           c.cfg.temps,
		Rates:           c.cfg.rates,
		FleetSizes:      c.cfg.fleetSizes,
		Router:          c.cfg.router,
		ChaosCrashes:    c.cfg.chaosCrashes,
		ChaosExcursions: c.cfg.chaosExcursions,
		ChaosGlitches:   c.cfg.chaosGlitches,
		TraceFile:       c.cfg.traceFile,
		Scaler:          c.cfg.scaler,
		FleetWorkers:    c.cfg.fleetWorkers,
		PlanWorkers:     c.cfg.planWorkers,
		PlanRate:        c.cfg.planRate,
		PlanP99MS:       c.cfg.planP99MS,
		PlanShed:        c.cfg.planShed,
		Obs:             c.cfg.tracer,
	}
	if err := c.cfg.variant.apply(&ecfg); err != nil {
		return nil, err
	}

	scens := experiments.All()
	if len(c.cfg.ids) > 0 {
		scens = scens[:0:0]
		seen := make(map[string]bool)
		for _, id := range c.cfg.ids {
			s, ok := experiments.Lookup(id)
			if !ok {
				return nil, fmt.Errorf("pdr: unknown scenario %q (want %s)", id, experiments.KeyList())
			}
			if seen[s.ID] {
				continue
			}
			seen[s.ID] = true
			scens = append(scens, s)
		}
	}

	// The fixed shard plan: one unit per (scenario, shard), independent of
	// the worker count.
	var units []campaignUnit
	parts := make([][]*Report, len(scens))
	for si, s := range scens {
		n := s.Shards(ecfg)
		parts[si] = make([]*Report, n)
		for k := 0; k < n; k++ {
			units = append(units, campaignUnit{scen: si, shard: k})
		}
	}

	workers := c.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	t0 := time.Now()
	pool := &workpool.Counters{}
	errs := make([]error, len(units))
	workpool.RunCounted(len(units), workers, pool, func(i int) {
		u := units[i]
		if err := runCtx.Err(); err != nil {
			errs[i] = err
			return
		}
		u0 := time.Now()
		env, err := experiments.NewEnvWith(scens[u.scen].EnvConfig(ecfg, u.shard))
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		rep, err := scens[u.scen].Run(runCtx, env, u.shard)
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		rep.SimEvents += env.Platform.Kernel.Fired()
		rep.WallMS = float64(time.Since(u0)) / float64(time.Millisecond)
		parts[u.scen][u.shard] = rep
	})

	// Deterministic error selection: the lowest-index real failure wins;
	// bare cancellations (a worker aborted because another unit failed, or
	// the caller cancelled) only surface when nothing else went wrong.
	var cancelled error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return nil, fmt.Errorf("pdr: campaign %s shard %d: %w", scens[units[i].scen].ID, units[i].shard, err)
	}
	if cancelled != nil {
		return nil, cancelled
	}

	res := &CampaignResult{Seed: c.cfg.seed, Workers: workers, Units: len(units), cfg: ecfg}
	for si, s := range scens {
		rep := parts[si][0]
		if s.Merge != nil {
			var err error
			rep, err = s.Merge(ecfg, parts[si])
			if err != nil {
				return nil, fmt.Errorf("pdr: campaign %s merge: %w", s.ID, err)
			}
			// Merge builds a fresh report from the parts' tables; the
			// profiling tallies fold in here (sim events sum, wall clock
			// sums the shards' costs even when they overlapped on workers).
			for _, p := range parts[si] {
				rep.SimEvents += p.SimEvents
				rep.WallMS += p.WallMS
			}
		}
		res.Reports = append(res.Reports, rep)
	}
	res.Pool = pool.Snapshot()
	res.Elapsed = time.Since(t0)
	return res, nil
}
