package repro_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/pdr"
)

// TestDeterministicReports locks the optimized substrate (pooled event
// kernel, lock-free clocks, flat DMA pump, cached bitstream decode) to the
// seed behavior: the simulation is a deterministic function of its seed, so
// two fresh runs must produce byte-identical reports AND fire exactly the
// same number of kernel events. Any substrate change that reorders events,
// draws the RNG differently, or skips/duplicates work trips this test.
func TestDeterministicReports(t *testing.T) {
	run := func() (*experiments.Report, uint64) {
		env, err := experiments.NewEnv(42)
		if err != nil {
			t.Fatal(err)
		}
		// Table I spans the full behavior space: stream-limited and
		// memory-limited throughput, the hang rows (lost interrupt) and the
		// corrupt rows (RNG-driven bit flips).
		rep, err := experiments.TableI(env)
		if err != nil {
			t.Fatal(err)
		}
		return rep, env.Platform.Kernel.Fired()
	}

	rep1, fired1 := run()
	rep2, fired2 := run()

	if fired1 != fired2 {
		t.Errorf("event counts differ across identical runs: %d vs %d", fired1, fired2)
	}
	if !reflect.DeepEqual(rep1.Rows, rep2.Rows) {
		t.Errorf("report rows differ across identical runs:\n%v\nvs\n%v", rep1.Rows, rep2.Rows)
	}
	if r1, r2 := rep1.Render(), rep2.Render(); r1 != r2 {
		t.Errorf("rendered reports differ across identical runs:\n%s\nvs\n%s", r1, r2)
	}

	// Golden cells pin the simulated physics to the values the seed
	// produced (and the paper reports): the substrate may get faster, but
	// the numbers must not move by a digit.
	golden := []struct {
		row, col int
		want     string
	}{
		{0, 0, "100"}, {0, 1, "1325.04"}, {0, 2, "399.05"}, {0, 3, "valid"},
		{3, 1, "675.47"}, {3, 2, "782.80"},
		{5, 1, "669.01"}, {5, 2, "790.37"},
		{6, 1, "N/A no interrupt"}, {6, 3, "valid"},
		{7, 3, "not valid"},
	}
	for _, g := range golden {
		if got := rep1.Rows[g.row][g.col]; got != g.want {
			t.Errorf("Table I cell (%d,%d) = %q, want %q", g.row, g.col, got, g.want)
		}
	}
}

// TestCampaignSuiteParallelDeterminism is the campaign-level contract from
// the Campaign API redesign: the FULL E1–A5 suite run through pdr.Campaign
// on 4 workers must produce byte-identical reports — rendered text, JSON
// and the generated EXPERIMENTS.md document — to a sequential run. Every
// shard owns a fresh kernel and merges by index, so any divergence here
// means a shard leaked state across workers or the merge order raced.
func TestCampaignSuiteParallelDeterminism(t *testing.T) {
	run := func(workers int) *pdr.CampaignResult {
		res, err := pdr.NewCampaign(
			pdr.WithCampaignSeed(42),
			pdr.WithWorkers(workers),
		).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	if seq.Units != par.Units {
		t.Errorf("shard plans differ: %d vs %d units (the plan must not depend on workers)", seq.Units, par.Units)
	}
	if a, b := seq.Render(), par.Render(); a != b {
		t.Errorf("parallel suite render differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", a, b)
	}
	a, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("parallel suite JSON differs from sequential")
	}
	if seq.Markdown() != par.Markdown() {
		t.Error("parallel EXPERIMENTS.md differs from sequential")
	}
}

// TestDeterministicSingleLoad repeats the check at the public API: two
// systems with the same seed must report identical load results and fire
// identical event counts.
func TestDeterministicSingleLoad(t *testing.T) {
	run := func() (pdr.Result, uint64) {
		sys, err := pdr.NewSystem(pdr.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.SetFrequencyMHz(200); err != nil {
			t.Fatal(err)
		}
		res, err := sys.LoadASP("RP1", "fir128")
		if err != nil {
			t.Fatal(err)
		}
		return res, sys.Platform().Kernel.Fired()
	}

	res1, fired1 := run()
	res2, fired2 := run()
	if res1 != res2 {
		t.Errorf("load results differ across identical runs:\n%+v\nvs\n%+v", res1, res2)
	}
	if fired1 != fired2 {
		t.Errorf("event counts differ across identical runs: %d vs %d", fired1, fired2)
	}
	if !res1.IRQReceived || !res1.CRCValid || !res1.DataIntact {
		t.Errorf("200 MHz load should succeed cleanly, got %+v", res1)
	}
}
