// Example campaign runs a subset of the paper's evaluation through the
// Campaign API: the Table-I sweep, the heat-gun stress matrix and the
// Poisson-load framework experiment, sharded over every CPU. The output is
// byte-identical to a sequential run — parallelism only changes how long
// you wait.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/pdr"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	start := time.Now()
	res, err := pdr.NewCampaign(
		pdr.WithCampaignSeed(42),
		pdr.WithWorkers(0), // one worker per CPU
		pdr.WithScenarios("E1", "E3", "E9"),
	).Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}

	fmt.Print(res.Render())
	fmt.Printf("%d scenarios as %d shards on %d workers in %v\n",
		len(res.Reports), res.Units, res.Workers, time.Since(start).Round(time.Millisecond))
}
