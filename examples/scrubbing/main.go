// scrubbing: completes the loop the paper's CRC read-back block opens. In
// an industrial environment (the paper's motivation) configuration memory
// takes single-event upsets; the CRC monitor detects the mismatch, and the
// scrubber localises and rewrites only the damaged frames through the ICAP
// — autonomously in the PL, without PS software, DMA programming or DDR
// bandwidth.
package main

import (
	"fmt"
	"log"

	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/pdr"
)

func main() {
	sys, err := pdr.NewSystem(pdr.WithSeed(41))
	if err != nil {
		log.Fatal(err)
	}

	// Configure RP1 and keep the golden image.
	if _, err := sys.SetFrequencyMHz(200); err != nil {
		log.Fatal(err)
	}
	bs, err := sys.BuildBitstream("RP1", "aes-gcm")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Load("RP1", bs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured RP1 with aes-gcm: %.1f µs, CRC valid=%v\n", res.LatencyUS, res.CRCValid)

	p := sys.Platform()
	rp, err := p.RP("RP1")
	if err != nil {
		log.Fatal(err)
	}

	// A burst of radiation: 12 upsets across the partition.
	inj := scrub.NewInjector(p.Memory, 99)
	if _, err := inj.UpsetRegion(rp, 12); err != nil {
		log.Fatal(err)
	}
	intact, err := p.Memory.RegionEqual(rp, bs.Frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected 12 SEUs; configuration intact=%v\n", intact)

	// Detect and repair.
	scrubber := scrub.New(p.Kernel, p.ICAP)
	var rep scrub.Report
	done := false
	if err := scrubber.Scrub(rp, bs.Frames, func(r scrub.Report, serr error) {
		if serr != nil {
			log.Fatal(serr)
		}
		rep, done = r, true
	}); err != nil {
		log.Fatal(err)
	}
	sys.RunFor(10 * sim.Millisecond)
	if !done {
		log.Fatal("scrub did not finish")
	}
	fmt.Printf("scrub: scanned %d frames, repaired %d, clean=%v, took %v\n",
		rep.FramesScanned, rep.FramesRepaired, rep.Clean, rep.Duration)

	intact, err = p.Memory.RegionEqual(rp, bs.Frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration intact after scrub: %v\n", intact)
	fmt.Println("(compare: a full reload moves all 1308 frames through the PS+DMA+DDR path)")
}
