// fleet: the reconfiguration service scaled out — a simulated fleet of
// boards behind a request router, the layer that turns one ZedBoard's
// saturation knee into a capacity-planning question. The run shows the
// three levers the fleet layer adds on top of a single board's service:
//
//  1. fleet size: offered load far above one board's knee spreads across
//     boards, and goodput scales until the stream itself is the limit;
//  2. the routing policy: when per-board caches cannot hold the working
//     set, bitstream-affinity routing (consistent hashing on the image)
//     keeps each image on one board's cache while round-robin thrashes
//     every cache at once;
//  3. the autoscaler: a reactive scaler grows the active fleet from one
//     board until windowed shed-rate and p99 fall back under threshold.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/pdr"
)

var asps = []string{"fir128", "sha3", "aes-gcm", "fft1k"}

func serve(opts pdr.FleetOptions, spec pdr.ArrivalSpec, n int) *pdr.FleetStats {
	opts.Seed = 42
	f, err := pdr.NewFleet(opts)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := f.OpenTrace(spec, 7, n, asps)
	if err != nil {
		log.Fatal(err)
	}
	st, err := f.Serve(tr)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	load := pdr.ArrivalSpec{RatePerSec: 1600, Deadline: 20 * sim.Millisecond}

	fmt.Println("— goodput vs fleet size at 1600 req/s (one board saturates ≈800) —")
	for _, n := range []int{1, 2, 4} {
		st := serve(pdr.FleetOptions{
			Boards:  make([]string, n), // n default ZedBoards
			Router:  "least-outstanding",
			Prewarm: asps,
		}, load, 192)
		fmt.Printf("%d board(s): goodput %5.0f req/s  p99 %6.2f ms  deadline misses %3d/%d\n",
			n, st.GoodputPerSec(), st.Aggregate.SojournUS.Quantile(0.99)/1000,
			st.Aggregate.DeadlineMisses, st.Aggregate.Completed)
	}

	fmt.Println("\n— routing policies, cold 5-image caches vs a 16-image working set —")
	skewed := pdr.ArrivalSpec{RatePerSec: 400, Skew: 1.1, Deadline: 20 * sim.Millisecond}
	for _, router := range pdr.Routers() {
		st := serve(pdr.FleetOptions{
			Boards:           make([]string, 4),
			Router:           router,
			CacheBudgetBytes: 5 * 528760, // five images/board: residency is earned by routing
		}, skewed, 192)
		fmt.Printf("%-17s: hit ratio %3.0f%%  p99 %6.2f ms\n",
			router, 100*st.CacheHitRatio(), st.Aggregate.SojournUS.Quantile(0.99)/1000)
	}

	fmt.Println("\n— autoscaler: grow from 1 board under pressure —")
	st := serve(pdr.FleetOptions{
		Boards: make([]string, 4),
		Router: "least-outstanding",
		Autoscale: &pdr.AutoscalePolicy{
			Window:  25 * sim.Millisecond,
			Min:     1,
			Max:     4,
			ShedHi:  0.01,
			P99HiUS: (20 * sim.Millisecond).Microseconds(),
			ShedLo:  0,
			P99LoUS: (2 * sim.Millisecond).Microseconds(),
		},
		Prewarm: asps,
	}, load, 192)
	for _, ev := range st.ScaleEvents {
		fmt.Printf("t=%6.1f ms: %d → %d boards (%s)\n", ev.AtUS/1000, ev.From, ev.To, ev.Reason)
	}
	fmt.Printf("settled at %d active board(s), peak %d; fleet p99 %.2f ms\n",
		st.FinalActive, st.PeakActive, st.Aggregate.SojournUS.Quantile(0.99)/1000)

	fmt.Println("\nthe router keeps caches warm and the scaler sizes the fleet — the knee is now a budget, not a wall")
}
