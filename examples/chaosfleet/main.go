// chaosfleet: the fleet layer under fire — a seeded fault storm replayed
// against a warm four-board fleet with the self-healing machinery on. The
// storm is part of the experiment configuration (same seed ⇒ byte-identical
// event list), so a chaos run is exactly as reproducible as a calm one.
//
// The run shows the three halves of the robustness story:
//
//  1. the storm: board crashes, a thermal excursion into the throttle
//     regime, and CRC glitches against resident images, all drawn from one
//     seeded schedule every routing policy replays identically;
//  2. self-healing: failover on refused connections, CRC-verdict outlier
//     ejection, thermal throttling, frame-addressed scrub repair, and an
//     autoscaler that replaces dead capacity;
//  3. the headline: affinity routing degrades worst under a crash — the
//     dead board's keys funnel onto its single ring successor — while
//     least-outstanding degrades gracefully because queue depth already
//     encodes board health.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/pdr"
)

var asps = []string{"fir128", "sha3", "aes-gcm", "fft1k"}

func main() {
	// The storm: seeded, deterministic, clipped to the stream horizon.
	storm := pdr.FaultStorm{
		Seed:           99,
		Horizon:        240 * sim.Millisecond,
		Boards:         4,
		Crashes:        2,
		Outage:         60 * sim.Millisecond,
		Excursions:     1,
		ExcursionTempC: 85,
		Dwell:          50 * sim.Millisecond,
		Glitches:       4,
		GlitchFrames:   2,
	}
	schedule, err := storm.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— the storm (same events for every policy) —")
	for _, ev := range schedule {
		extra := ""
		switch {
		case ev.TempC > 0:
			extra = fmt.Sprintf(" → %.0f °C", ev.TempC)
		case ev.Frames > 0:
			extra = fmt.Sprintf(" (%d frames)", ev.Frames)
		}
		fmt.Printf("t=%6.1f ms  board %d  %s%s\n",
			float64(ev.At)/float64(sim.Millisecond), ev.Board, ev.Kind, extra)
	}

	// The same warm fleet and the same arrival stream for every policy:
	// 1600 req/s across four boards is comfortable (~400 req/s each), so
	// everything that goes wrong is the storm's doing.
	load := pdr.ArrivalSpec{RatePerSec: 1600, Skew: 1.1, Deadline: 20 * sim.Millisecond}
	fmt.Println("\n— routing policies through the identical storm —")
	for _, router := range pdr.Routers() {
		f, err := pdr.NewFleet(pdr.FleetOptions{
			Boards:  make([]string, 4), // four default ZedBoards
			Seed:    42,
			Router:  router,
			Prewarm: asps,    // warm caches: a crash erases real warmth
			Repair:  "scrub", // frame-addressed repair, not a full reload
			Chaos:   &pdr.ChaosPolicy{Schedule: schedule},
			Autoscale: &pdr.AutoscalePolicy{
				Window:  25 * sim.Millisecond,
				Min:     3, // one short of full: the scaler must replace dead capacity
				Max:     4,
				ShedHi:  0.01,
				P99HiUS: (20 * sim.Millisecond).Microseconds(),
				ShedLo:  -1, // never shrink mid-storm
				P99LoUS: 0,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := f.OpenTrace(load, 7, 384, asps)
		if err != nil {
			log.Fatal(err)
		}
		st, err := f.Serve(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s: avail %5.1f%%  goodput %4.0f req/s  p99 %6.2f ms  lost %2d  failed over %2d  repairs %d\n",
			router, 100*st.Availability(), st.GoodputPerSec(),
			st.Aggregate.SojournUS.Quantile(0.99)/1000,
			st.Aggregate.Lost, st.FailedOver, st.Aggregate.Repairs)
	}

	fmt.Println("\nqueue depth already encodes board health — consistent hashing does not: under a crash, affinity funnels the dead board's keys onto one survivor while least-outstanding spreads them")
}
