// serve: the Fig.-1 framework promoted to a reconfiguration service — the
// paper's motivating deployment, actually serving traffic. An open-loop
// Poisson stream of accelerator requests hits the four RPs; resident ASPs
// compute concurrently while the single over-clocked ICAP swaps the rest.
// The run shows the two levers the service layer adds on top of the
// over-clocked controller:
//
//  1. the DRAM bitstream cache: without it every swap re-stages ~529 KB
//     from SD at 20 MB/s and the board saturates at tens of requests per
//     second; with it the knee moves an order of magnitude out;
//  2. the dispatch policy: when the cache cannot hold the working set,
//     residency-affine dispatch batches resident work and cuts the tail.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/pdr"
)

var asps = []string{"fir128", "sha3", "aes-gcm", "fft1k"}

func newSystem() *pdr.System {
	sys, err := pdr.NewSystem(pdr.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.SetFrequencyMHz(200); err != nil {
		log.Fatal(err)
	}
	return sys
}

func serve(rate float64, opts pdr.ServeOptions) pdr.ServiceStats {
	sys := newSystem()
	spec := pdr.ArrivalSpec{
		RatePerSec: rate,
		Tenants:    []string{"video", "crypto"},
		Deadline:   20 * sim.Millisecond,
	}
	tr, err := sys.OpenTrace(spec, 7, 96, asps)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sys.Serve(tr, opts)
	if err != nil {
		log.Fatal(err)
	}
	return stats
}

func main() {
	fmt.Println("— cache vs no-cache at 200 req/s —")
	for _, mode := range []struct {
		label  string
		budget int64
	}{
		{"DRAM cache (profile budget)", 0},
		{"no cache (SD re-staging)   ", -1},
	} {
		st := serve(200, pdr.ServeOptions{CacheBudgetBytes: mode.budget, Prewarm: asps})
		fmt.Printf("%s: p50 %6.2f ms  p99 %7.2f ms  deadline misses %d/%d\n",
			mode.label, st.SojournUS.Quantile(0.50)/1000, st.SojournUS.Quantile(0.99)/1000,
			st.DeadlineMisses, st.Completed)
	}

	fmt.Println("\n— dispatch policies under a thrashing 2-image cache, 150 req/s —")
	for _, policy := range pdr.Policies() {
		st := serve(150, pdr.ServeOptions{
			Policy:           policy,
			CacheBudgetBytes: 2 * 528760, // two images: far under the 16-image working set
			Prewarm:          asps,
		})
		fmt.Printf("%-8s: hit rate %2.0f%%  p99 %7.2f ms  evictions %d\n",
			policy, 100*float64(st.Hits)/float64(st.Requests),
			st.SojournUS.Quantile(0.99)/1000, st.Cache.Evictions)
	}

	fmt.Println("\n— per-tenant view (cached, 200 req/s) —")
	st := serve(200, pdr.ServeOptions{Prewarm: asps})
	for _, name := range st.TenantNames() {
		ts := st.Tenants[name]
		fmt.Printf("%-7s: offered %2d  completed %2d  deadline misses %d\n",
			name, ts.Offered, ts.Completed, ts.DeadlineMisses)
	}
	fmt.Println("\nthe cache keeps the ICAP the bottleneck (as the paper intends) instead of the SD card")
}
