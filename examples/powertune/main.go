// powertune: the paper's methodology for the most power-efficient
// implementation (Sec. IV-B / VII). Sweep the operational frequencies,
// measure throughput and P_PDR from the board's current-sense headers,
// compute performance-per-watt, and pick the knee — clipped to a timing
// guard band at the worst-case deployment temperature so the choice
// survives a harsh environment.
package main

import (
	"fmt"
	"log"

	"repro/pdr"
)

func main() {
	sys, err := pdr.NewSystem(pdr.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	freqs := []float64{100, 140, 180, 200, 240, 280}
	points, err := sys.PowerGrid("RP1", "aes-gcm", freqs, []float64{40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("freq [MHz]   P_PDR [W]   throughput [MB/s]   PpW [MB/J]")
	for _, pt := range points {
		fmt.Printf("%7.0f      %6.2f      %10.2f          %6.0f\n",
			pt.FreqMHz, pt.PDRWatts, pt.ThroughputMBs, pt.PpW)
	}

	rec, err := sys.Optimize("RP1", "aes-gcm", freqs, 100 /* worst °C */, 0.10 /* margin */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended operating point: %.0f MHz (%.0f MB/J, guard band %.0f MHz at 100 °C)\n",
		rec.FreqMHz, rec.PpW, rec.GuardBandMHz)
	fmt.Println("the paper lands in the same place: 200 MHz, ≈599 MB/J — the knee where")
	fmt.Println("throughput has saturated but power keeps rising with frequency")
}
