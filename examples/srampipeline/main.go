// srampipeline: the paper's proposed next-generation reconfiguration
// environment (Sec. VI, Fig. 7). Partial bitstreams are pre-loaded into a
// QDR-II+ SRAM while the current accelerator computes; reconfiguration then
// streams at the SRAM's 1237.5 MB/s — with the RLE decompressor pushing the
// effective rate higher still, because zero runs cost no SRAM bandwidth.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/srampdr"
	"repro/pdr"
)

func main() {
	sys, err := pdr.NewSystem(pdr.WithSeed(29))
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := sys.SRAMPipeline()
	if err != nil {
		log.Fatal(err)
	}

	// Baseline for comparison: the measured DMA path at its best (280 MHz).
	if _, err := sys.SetFrequencyMHz(280); err != nil {
		log.Fatal(err)
	}
	dmaRes, err := sys.LoadASP("RP1", "fft1k")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sec. IV  DMA path @280 MHz : %7.2f µs  %8.2f MB/s\n",
		dmaRes.LatencyUS, dmaRes.ThroughputMBs)

	for _, compressed := range []bool{false, true} {
		bs, err := sys.BuildBitstream("RP2", "fft1k")
		if err != nil {
			log.Fatal(err)
		}
		if err := pipe.Register(bs, compressed); err != nil {
			log.Fatal(err)
		}
		// The PS scheduler pre-loads while "the current accelerator is
		// performing its task" — here we just let the copy run.
		loaded := false
		if err := pipe.Preload("fft1k", func(p srampdr.Preloaded) { loaded = true }); err != nil {
			log.Fatal(err)
		}
		sys.RunFor(5 * sim.Millisecond)
		if !loaded {
			log.Fatal("preload did not finish")
		}
		var res srampdr.ReconfigResult
		got := false
		if err := pipe.Reconfigure(func(r srampdr.ReconfigResult) { res, got = r, true }); err != nil {
			log.Fatal(err)
		}
		sys.RunFor(5 * sim.Millisecond)
		if !got {
			log.Fatal("reconfigure did not finish")
		}
		mode := "raw       "
		if compressed {
			mode = "compressed"
		}
		fmt.Printf("Sec. VI  SRAM %s   : %7.2f µs  %8.2f MB/s  (SRAM held %d bytes, CRC valid=%v)\n",
			mode, res.LatencyUS, res.ThroughputMBs, res.BytesFromSRAM, res.CRCValid)
	}
	fmt.Printf("paper's theoretical SRAM rate: %.1f MB/s\n", srampdr.TheoreticalThroughputMBs())
}
