// harshenv: the industrial-IoT scenario that motivates the "robust" in the
// paper's title. The die is heat-gunned to 100 °C (a factory-floor worst
// case), an aggressive over-clock is attempted, the CRC read-back catches
// the failure, and the RobustGuard falls back to a safe frequency and
// reloads — turning a silent corruption into a bounded-latency recovery.
package main

import (
	"fmt"
	"log"

	"repro/pdr"
)

func main() {
	sys, err := pdr.NewSystem(pdr.WithSeed(17))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("heating die to 100 °C (heat gun on the Zynq heat sink)…")
	if err := sys.HeatTo(100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("die sensor reads %.1f °C\n\n", sys.DieTempC())

	// 310 MHz passes CRC at room temperature but corrupts at 100 °C — the
	// single failing cell of the paper's stress matrix.
	if _, err := sys.SetFrequencyMHz(310); err != nil {
		log.Fatal(err)
	}
	rec, err := sys.RobustLoad("RP1", "decimal-fpu")
	if err != nil {
		log.Fatal(err)
	}
	for i, att := range rec.Attempts {
		verdict := "CRC valid"
		if !att.CRCValid {
			verdict = "CRC NOT valid"
		}
		irq := "interrupt ok"
		if !att.IRQReceived {
			irq = "no interrupt"
		}
		fmt.Printf("attempt %d @ %3.0f MHz (%5.1f °C): %s, %s\n",
			i+1, att.FreqMHz, att.TempC, irq, verdict)
	}
	fmt.Printf("\nrecovered=%v at %.0f MHz; whole episode took %.0f µs\n",
		rec.Recovered, rec.FallbackMHz, rec.TotalUS)
	fmt.Println("without the CRC read-back block this failure would have been silent")

	sys.HeatOff()
}
