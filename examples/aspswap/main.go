// aspswap: the introduction's motivating workload — one FPGA serving more
// accelerator personalities than fit at once, swapping ASPs on demand
// across the four reconfigurable partitions (Fig. 1). The run compares the
// reconfiguration overhead at the nominal 100 MHz against the over-clocked
// 200 MHz knee: the same trace, the same hardware, half the dead time.
package main

import (
	"fmt"
	"log"

	"repro/pdr"
)

func run(freqMHz float64) (pdr.FrameworkStats, error) {
	sys, err := pdr.NewSystem(pdr.WithSeed(11))
	if err != nil {
		return pdr.FrameworkStats{}, err
	}
	if _, err := sys.SetFrequencyMHz(freqMHz); err != nil {
		return pdr.FrameworkStats{}, err
	}
	fw := sys.Framework()
	// 60 Poisson requests over 4 RPs and 5 ASP personalities: enough churn
	// that most requests need a swap.
	trace := sys.PoissonTrace(23, 60, 300, /* µs mean gap */
		[]string{"fir128", "fft1k", "aes-gcm", "sha3", "decimal-fpu"})
	return fw.Run(trace)
}

func main() {
	for _, f := range []float64{100, 200} {
		stats, err := run(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("@%3.0f MHz: %d requests (%d swaps, %d hits), makespan %v\n",
			f, stats.Requests, stats.Reconfigs, stats.Hits, stats.Makespan)
		fmt.Printf("          reconfig %v, compute %v → overhead %.1f%%\n",
			stats.ReconfigTime, stats.ComputeTime, 100*stats.OverheadFraction())
	}
	fmt.Println("over-clocking the configuration path cuts the swap tax without touching the ASPs")
}
