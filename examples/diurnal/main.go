// diurnal: replaying a day of traffic against the fleet's autoscaler — a
// diurnal rate curve (quiet night, morning ramp, afternoon plateau) with a
// flash crowd spiking on top, served twice on identical six-board fleets:
// once with the reactive scaler (grow one board per window on shed
// pressure) and once with the predictive one (forecast the next window's
// rate with Holt smoothing and pre-provision to it). The flash ramps
// faster than any forecast horizon, so the comparison isolates recovery:
// the forecaster retargets several boards after one window of observation,
// while the reactive policy pays one shedding window per board it is
// short.
//
// The run also round-trips the stream through the versioned trace format:
// export → import reproduces the exact request sequence, so a recorded day
// can be replayed against any policy change.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/pdr"
)

var asps = []string{"fir128", "sha3", "aes-gcm", "fft1k"}

// One simulated "hour" compressed to 20 ms: the whole day is 480 ms of
// stream time, and the autoscaler window matches the hour.
const hour = 20 * sim.Millisecond

func day() *pdr.RateCurve {
	at := func(h int) sim.Duration { return sim.Duration(h) * hour }
	return &pdr.RateCurve{
		Points: []pdr.RatePoint{
			{At: at(0), RatePerSec: 150}, {At: at(5), RatePerSec: 120},
			{At: at(8), RatePerSec: 350}, {At: at(12), RatePerSec: 450},
			{At: at(16), RatePerSec: 420}, {At: at(20), RatePerSec: 250},
			{At: at(24), RatePerSec: 150},
		},
		// The flash crowd: +1200 req/s ramping in one hour at 16:00,
		// holding two, decaying in one.
		Flashes: []pdr.Flash{{Start: at(16), Ramp: hour, Hold: 2 * hour, Decay: hour, PeakPerSec: 1200}},
	}
}

func serveDay(tr pdr.Trace, policy pdr.ScalerPolicy) *pdr.FleetStats {
	f, err := pdr.NewFleet(pdr.FleetOptions{
		Boards: make([]string, 6), // six default ZedBoards, cold caches
		Seed:   42,
		Router: "least-outstanding",
		Autoscale: &pdr.AutoscalePolicy{
			Window:          hour,
			Min:             1,
			Max:             6,
			ShedHi:          0.01,
			P99HiUS:         1e6, // growth is shed-driven in this demo
			ShedLo:          0,
			P99LoUS:         (20 * sim.Millisecond).Microseconds(),
			Policy:          policy,
			BoardRatePerSec: 200,
		},
		QueueCap: 8, // shallow queues: excess demand sheds in-window
	})
	if err != nil {
		log.Fatal(err)
	}
	st, err := f.Serve(tr)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	spec := pdr.ArrivalSpec{
		Curve:    day(),
		Deadline: 20 * sim.Millisecond,
		Classes: []pdr.SLOClass{
			{Name: "latency", Deadline: 20 * sim.Millisecond, Weight: 3},
			{Name: "batch", Deadline: 120 * sim.Millisecond, Weight: 1},
		},
	}
	f, err := pdr.NewFleet(pdr.FleetOptions{Boards: make([]string, 6)})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := f.OpenTraceUntil(spec, 7, 24*hour, asps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one simulated day: %d arrivals, flash crowd at hour 16\n\n", len(tr))

	for _, policy := range []pdr.ScalerPolicy{pdr.ScalerReactive, pdr.ScalerPredictive} {
		st := serveDay(tr, policy)
		agg := st.Aggregate
		fmt.Printf("— %s scaler —\n", policy)
		fmt.Printf("completed %d  shed %d  goodput %.0f req/s  active peak/final %d/%d\n",
			agg.Completed, agg.Shed, st.GoodputPerSec(), st.PeakActive, st.FinalActive)
		for _, name := range agg.ClassNames() {
			c := agg.Classes[name]
			fmt.Printf("  class %-8s offered %3d  completed %3d  deadline misses %3d\n",
				name, c.Offered, c.Completed, c.DeadlineMisses)
		}
		fmt.Println("  staffing (active boards per hour):")
		fmt.Print("  ")
		for _, w := range st.Windows {
			fmt.Printf("%d", w.Active)
		}
		fmt.Println()
		fmt.Println()
	}

	// Round-trip the day through the versioned trace format.
	data, err := pdr.ExportTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	back, err := pdr.ImportTrace(data)
	if err != nil {
		log.Fatal(err)
	}
	again, err := pdr.ExportTrace(back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace file: schema v%d, %d bytes, export→import→export identical: %v\n",
		pdr.TraceFileVersion, len(data), string(data) == string(again))
}
