// Quickstart: boot the simulated ZedBoard, over-clock the configuration
// path to the paper's power-efficiency knee (200 MHz), load one accelerator
// into a reconfigurable partition and print what the paper's OLED showed —
// latency, throughput and the CRC verdict.
package main

import (
	"fmt"
	"log"

	"repro/pdr"
)

func main() {
	sys, err := pdr.NewSystem(pdr.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	// Nominal first: the 100 MHz the DMA and ICAP are specified for.
	res, err := sys.LoadASP("RP1", "fir128")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal 100 MHz : %8.2f µs  %7.2f MB/s  CRC valid=%v\n",
		res.LatencyUS, res.ThroughputMBs, res.CRCValid)

	// Over-clock to the knee: same standard IP blocks, double the rate.
	if _, err := sys.SetFrequencyMHz(200); err != nil {
		log.Fatal(err)
	}
	res, err = sys.LoadASP("RP1", "sha3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boosted 200 MHz : %8.2f µs  %7.2f MB/s  CRC valid=%v\n",
		res.LatencyUS, res.ThroughputMBs, res.CRCValid)

	fmt.Printf("die %.1f °C, board %.2f W (P_PDR %.2f W)\n",
		sys.DieTempC(), sys.BoardPowerW(), sys.PDRPowerW())
}
